#include "src/serving/result_cache.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/core/scheduler.h"

namespace prism {
namespace {

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.empty() || a.size() != b.size()) {
    return -1.0;
  }
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    na += static_cast<double>(a[i]) * static_cast<double>(a[i]);
    nb += static_cast<double>(b[i]) * static_cast<double>(b[i]);
  }
  if (na == 0.0 || nb == 0.0) {
    return -1.0;
  }
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

// Gap between consecutive coalesced-waiter releases after a fill completes.
// Small enough to be latency-noise, large enough that a SimClock schedules
// each waiter at its own virtual instant (see the header's single-flight
// note): waiter i resumes alone, finishes its turn on any shared queues, and
// blocks before waiter i+1 becomes runnable.
constexpr double kCoalesceStaggerMs = 1e-3;

// Two different-key fills can finish at the same instant — a scheduler shed
// drain answers several queued leaders in one pop — and each fill's waiters
// count slots from 0, so slot staggering alone would release one waiter per
// fill at the same instant. A per-key phase (a pure function of the key
// hash, so it needs no cross-thread state) keeps cross-fill releases on
// distinct instants too; the bucket count is prime and the phase range stays
// below one slot so same-fill slot order is preserved.
constexpr double kFillPhaseMs = 1e-6;
constexpr uint64_t kFillPhaseBuckets = 509;

// A cached result re-served to a new caller: ranking is the engine's, but
// the timing belongs to the original fill, not this request — scrub it so
// workload latency stats measure this caller's experience (cache residence),
// and so no cached bytes are double-counted as device traffic.
RerankResult ServeCopy(const RerankResult& cached, double waited_ms) {
  RerankResult result = cached;
  result.stats = RerankStats{};
  result.stats.latency_ms = waited_ms;
  result.stats.queue_wait_ms = waited_ms;
  return result;
}

}  // namespace

QueryEmbedder MakeQueryEmbedder(EmbeddingSource* source, size_t hidden) {
  return [source, hidden](const RerankRequest& request) {
    std::vector<float> mean(hidden, 0.0f);
    if (request.query.empty()) {
      return mean;
    }
    std::vector<float> row(hidden);
    for (uint32_t token : request.query) {
      source->Lookup(token, row);
      for (size_t i = 0; i < hidden; ++i) {
        mean[i] += row[i];
      }
    }
    const float inv = 1.0f / static_cast<float>(request.query.size());
    for (float& v : mean) {
      v *= inv;
    }
    return mean;
  };
}

ResultCache::ResultCache(Runner* inner, ResultCacheOptions options, QueryEmbedder embedder)
    : inner_(inner),
      hashed_inner_(dynamic_cast<HashAwareRunner*>(inner)),
      options_(options),
      embedder_(std::move(embedder)),
      clock_(ResolveClock(options.clock)) {
  options_.capacity = std::max<size_t>(options_.capacity, 1);
  const size_t shard_count = std::max<size_t>(1, std::min(options_.shards, options_.capacity));
  per_shard_capacity_ = std::max<size_t>(1, options_.capacity / shard_count);
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->cv = clock_->MakeCondVar();
    shards_.push_back(std::move(shard));
  }
}

ResultCache::Key ResultCache::MakeKey(const RerankRequest& request) {
  return Key{request.query, request.docs, request.planted_r, request.k};
}

bool ResultCache::Key::Matches(const RerankRequest& request) const {
  return k == request.k && query == request.query && docs == request.docs &&
         planted_r == request.planted_r;
}

bool ResultCache::ExpiredLocked(const Entry& entry, double now_ms) const {
  return options_.ttl_ms > 0.0 && now_ms >= entry.filled_ms + options_.ttl_ms;
}

void ResultCache::EraseEntryLocked(Shard& shard, std::list<Entry>::iterator it) {
  shard.map.erase(it->hash);
  shard.lru.erase(it);
}

void ResultCache::InsertLocked(Shard& shard, uint64_t hash, Key key, const RerankResult& result,
                               std::vector<float> embedding, double now_ms) {
  auto existing = shard.map.find(hash);
  if (existing != shard.map.end()) {
    // Refill (or a colliding key displacing the old entry — the equality
    // check on the read side keeps that safe).
    EraseEntryLocked(shard, existing->second);
  }
  while (shard.lru.size() >= per_shard_capacity_) {
    shard.counters.evicted.Add(1);
    EraseEntryLocked(shard, std::prev(shard.lru.end()));
  }
  Entry entry;
  entry.hash = hash;
  entry.key = std::move(key);
  entry.result = ServeCopy(result, 0.0);
  entry.filled_ms = now_ms;
  entry.embedding = std::move(embedding);
  shard.lru.push_front(std::move(entry));
  shard.map[hash] = shard.lru.begin();
}

const ResultCache::Entry* ResultCache::SimilarLocked(Shard& shard,
                                                     const std::vector<float>& embedding,
                                                     double now_ms) const {
  const Entry* best = nullptr;
  double best_cos = options_.similarity;
  for (const Entry& entry : shard.lru) {
    if (ExpiredLocked(entry, now_ms)) {
      continue;
    }
    const double cos = Cosine(embedding, entry.embedding);
    if (cos >= best_cos) {
      best = &entry;
      best_cos = cos;
    }
  }
  return best;
}

RerankResult ResultCache::Forward(const RerankRequest& request, uint64_t hash) {
  if (hashed_inner_ != nullptr) {
    return hashed_inner_->RerankHashed(request, hash);
  }
  return inner_->Rerank(request);
}

RerankResult ResultCache::Rerank(const RerankRequest& request) {
  const uint64_t hash = QueryHash(request);
  Shard& shard = *shards_[hash % shards_.size()];

  // Embed before taking the shard lock: the embedder may read rows through
  // the (mutex-guarded, possibly device-backed) embedding source, and a
  // cache lookup must never serialize behind another request's device read.
  std::vector<float> embedding;
  const bool similarity_on = options_.similarity > 0.0 && embedder_ != nullptr;
  if (similarity_on) {
    embedding = embedder_(request);
  }

  const double enter_ms = clock_->NowMs();
  shard.mu.Lock();
  shard.counters.lookups.Add(1);
  bool parked = false;  // Did we ever wait behind another caller's fill?
  for (;;) {
    const double now_ms = clock_->NowMs();
    auto it = shard.map.find(hash);
    if (it != shard.map.end()) {
      Entry& entry = *it->second;
      if (ExpiredLocked(entry, now_ms)) {
        shard.counters.expired.Add(1);
        EraseEntryLocked(shard, it->second);
      } else if (entry.key.Matches(request)) {
        if (parked) {
          shard.counters.coalesced.Add(1);
        } else {
          shard.counters.hits.Add(1);
        }
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        RerankResult served = ServeCopy(entry.result, now_ms - enter_ms);
        shard.mu.Unlock();
        return served;
      } else {
        // Hash collision with a different resident key: treat as an
        // uncacheable miss (forward without filling) rather than fight the
        // resident entry for the slot.
        shard.counters.misses.Add(1);
        shard.mu.Unlock();
        return Forward(request, hash);
      }
    }

    if (similarity_on) {
      if (const Entry* near = SimilarLocked(shard, embedding, now_ms)) {
        shard.counters.similarity_hits.Add(1);
        RerankResult served = ServeCopy(near->result, now_ms - enter_ms);
        shard.mu.Unlock();
        return served;
      }
    }

    auto fill_it = shard.fills.find(hash);
    if (fill_it == shard.fills.end() || !options_.single_flight) {
      // No fill in flight (or coalescing off): we lead one — unless we
      // burned our whole budget parked behind a fill that then failed.
      if (parked && request.deadline_ms > 0.0 && now_ms - enter_ms >= request.deadline_ms) {
        shard.counters.shed_waiting.Add(1);
        shard.mu.Unlock();
        return MakeShedResult(request.deadline_ms, now_ms - enter_ms);
      }
      break;
    }
    if (!fill_it->second->key.Matches(request)) {
      // A *different* key's fill owns this hash; don't coalesce onto a
      // result that isn't ours — forward directly, uncached.
      shard.counters.misses.Add(1);
      shard.mu.Unlock();
      return Forward(request, hash);
    }
    // Park behind the leader. Honor our own deadline: a waiter whose budget
    // expires mid-fill sheds with its true cache residence, exactly like a
    // request aging out of a scheduler queue.
    parked = true;
    const std::shared_ptr<FillState> fill = fill_it->second;
    const size_t slot = fill->parked++;
    if (request.deadline_ms > 0.0) {
      const double give_up_ms = enter_ms + request.deadline_ms;
      while (!fill->done) {
        if (!shard.cv->WaitUntil(shard.mu, give_up_ms)) {
          break;  // Budget exhausted; the post-check below decides.
        }
      }
      if (!fill->done) {
        shard.counters.shed_waiting.Add(1);
        const double waited_ms = clock_->NowMs() - enter_ms;
        shard.mu.Unlock();
        return MakeShedResult(request.deadline_ms, waited_ms);
      }
    } else {
      while (!fill->done) {
        shard.cv->Wait(shard.mu);
      }
    }
    // Staggered release (header note): every waiter woke at the fill's
    // completion instant; re-sleep to a slot of our own so waiters resume
    // one at a time, in park order.
    const double release_ms =
        fill->done_ms + kCoalesceStaggerMs * static_cast<double>(slot + 1) +
        kFillPhaseMs * static_cast<double>(hash % kFillPhaseBuckets + 1);
    shard.mu.Unlock();
    clock_->SleepUntil(release_ms);
    shard.mu.Lock();
    // Loop: re-probe the map. If the leader succeeded we coalesce onto its
    // entry; if it failed (fill gone, no entry) we compete to lead anew.
  }

  // Miss: lead a fill. The shard lock is dropped across the inner pass so
  // the cache never serializes distinct queries.
  shard.counters.misses.Add(1);
  const bool leading = options_.single_flight;
  if (leading) {
    auto state = std::make_shared<FillState>();
    state->key = MakeKey(request);
    shard.fills.emplace(hash, std::move(state));
  }
  shard.mu.Unlock();

  RerankResult result = Forward(request, hash);

  shard.mu.Lock();
  const double done_ms = clock_->NowMs();
  if (result.status.ok()) {
    InsertLocked(shard, hash, MakeKey(request), result, std::move(embedding), done_ms);
  } else {
    shard.counters.fill_errors.Add(1);
  }
  if (leading) {
    // Success or failure, publish completion and release the key: waiters
    // coalesce onto the fresh entry, or — after a failed fill — the first
    // released waiter leads its own fill. An error never poisons the key,
    // and the leader's error surfaces only to its own caller.
    auto done_it = shard.fills.find(hash);
    done_it->second->done = true;
    done_it->second->done_ms = done_ms;
    shard.fills.erase(done_it);
    shard.cv->NotifyAll();
  }
  shard.mu.Unlock();
  return result;
}

void ResultCache::InvalidateAll() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->counters.invalidated.Add(static_cast<int64_t>(shard->lru.size()));
    shard->map.clear();
    shard->lru.clear();
  }
}

bool ResultCache::Invalidate(const RerankRequest& request) {
  const uint64_t hash = QueryHash(request);
  Shard& shard = *shards_[hash % shards_.size()];
  MutexLock lock(shard.mu);
  auto it = shard.map.find(hash);
  if (it == shard.map.end() || !it->second->key.Matches(request)) {
    return false;
  }
  shard.counters.invalidated.Add(1);
  EraseEntryLocked(shard, it->second);
  return true;
}

ResultCacheStats ResultCache::stats() const {
  // Lock-free fold of the per-shard cells. A snapshot, not a linearizable
  // total: a request mid-flight may show its lookup but not yet its
  // hit/miss outcome (HitRate momentarily undercounts, never divides by a
  // stale zero).
  ResultCacheStats merged;
  for (const auto& shard : shards_) {
    const ShardCounters& c = shard->counters;
    merged.lookups += static_cast<size_t>(c.lookups.Load());
    merged.hits += static_cast<size_t>(c.hits.Load());
    merged.similarity_hits += static_cast<size_t>(c.similarity_hits.Load());
    merged.coalesced += static_cast<size_t>(c.coalesced.Load());
    merged.shed_waiting += static_cast<size_t>(c.shed_waiting.Load());
    merged.misses += static_cast<size_t>(c.misses.Load());
    merged.fill_errors += static_cast<size_t>(c.fill_errors.Load());
    merged.expired += static_cast<size_t>(c.expired.Load());
    merged.evicted += static_cast<size_t>(c.evicted.Load());
    merged.invalidated += static_cast<size_t>(c.invalidated.Load());
  }
  return merged;
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace prism

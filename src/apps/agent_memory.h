// Agent-memory application (paper §6.3, Figs 12–13; MobiAgent-style).
//
// A GUI agent caches past successful action trajectories keyed by task
// description. For each step of a task, the agent either (a) asks the VLM to
// decide the next action — expensive — or (b) retrieves candidate
// trajectories from memory and lets the reranker pick the most semantically
// relevant one to replay — cheap when the pick is right. Task success fails
// only when a wrong trajectory is replayed (the VLM path is assumed correct).
#ifndef PRISM_SRC_APPS_AGENT_MEMORY_H_
#define PRISM_SRC_APPS_AGENT_MEMORY_H_

#include <string>
#include <vector>

#include "src/apps/sim_llm.h"
#include "src/common/clock.h"
#include "src/data/dataset.h"
#include "src/retrieval/bm25.h"
#include "src/runtime/runner.h"

namespace prism {

struct AgentWorkloadProfile {
  std::string name;          // "video" | "community"
  size_t n_tasks = 6;
  size_t steps_per_task = 4;
  size_t memory_entries = 48;   // Cached trajectories.
  size_t candidates = 20;       // Retrieved per step for reranking.
  double env_step_ms = 280.0;   // UI action execution time.
  // A VLM decision ingests a screenshot + instruction (~3.5k tokens here) and
  // decodes an action plan — substantially costlier than one rerank, which is
  // the premise of caching trajectories at all.
  size_t vlm_prompt_tokens = 3500;
  size_t vlm_new_tokens = 30;
  DatasetProfile text;          // Token statistics of task descriptions.
};

AgentWorkloadProfile VideoWorkload();
AgentWorkloadProfile CommunityWorkload();

struct AgentRunResult {
  double avg_task_latency_ms = 0.0;
  double success_rate = 0.0;
  double rerank_ms = 0.0;     // Mean per task.
  double inference_ms = 0.0;  // Mean per task (VLM).
  double env_ms = 0.0;        // Mean per task.
};

// One task driven end to end (the serving-layer request unit: a workload
// client replays whole tasks, not isolated reranks).
struct AgentTaskResult {
  bool success = true;     // False only when a wrong trajectory was replayed.
  bool rerank_ok = true;   // Every rerank this task issued was served.
  double task_ms = 0.0;
  double rerank_ms = 0.0;
  double inference_ms = 0.0;  // VLM decisions (fallback or memory-disabled).
  double env_ms = 0.0;
  // Per-step decision signature: the picked memory entry, or SIZE_MAX when
  // the step fell back to the VLM. Deterministic in (seed, task) for served
  // reranks, which is what the scenario mismatch checks compare.
  std::vector<size_t> picks;
};

class AgentMemoryApp {
 public:
  // `clock` is the time source for the modelled VLM and environment-step
  // latencies. nullptr (default) = the shared wall clock — identical to the
  // old sleep_for behaviour; a SimClock charges those stages on virtual
  // time. The pointee must outlive the app.
  AgentMemoryApp(AgentWorkloadProfile profile, const ModelConfig& model, uint64_t seed,
                 Clock* clock = nullptr);

  size_t n_tasks() const { return tasks_.size(); }

  // Replays one task. Thread-safe: memory, index, and ground truth are
  // immutable after construction and the per-step relevance noise is seeded
  // by (seed, doc, task, step), so concurrent clients can replay tasks
  // against one shared (thread-safe) runner. `runner` == nullptr sends
  // every step to the VLM.
  AgentTaskResult RunTask(size_t task_idx, Runner* runner) const;

  // `runner` == nullptr disables agent memory (every step goes to the VLM).
  AgentRunResult Run(Runner* runner) const;

 private:
  struct Trajectory {
    std::vector<uint32_t> description;
    size_t task_type = 0;
  };

  AgentWorkloadProfile profile_;
  uint64_t seed_;
  std::vector<Trajectory> memory_;
  std::vector<Trajectory> tasks_;  // task_type is the ground truth.
  Bm25Index index_;                // Over memory descriptions; built once.
  Clock* clock_;
  SimulatedLlm vlm_;
};

}  // namespace prism

#endif  // PRISM_SRC_APPS_AGENT_MEMORY_H_

#include "src/model/config.h"

#include "src/common/check.h"

namespace prism {

size_t ModelConfig::LayerParams() const {
  // Attention: wq, wk, wv, wo — each [hidden, hidden].
  size_t params = 4 * hidden * hidden;
  // FFN: decoder SwiGLU has gate+up+down; encoder has up+down only.
  if (arch == ModelArch::kDecoderOnly) {
    params += 3 * hidden * ffn;
  } else {
    params += 2 * hidden * ffn;
  }
  // Two norms, gain + bias each.
  params += 4 * hidden;
  return params;
}

ModelConfig Qwen3Reranker0_6B() {
  ModelConfig c;
  c.name = "Qwen3-Reranker-0.6B";
  c.arch = ModelArch::kDecoderOnly;
  c.n_layers = 28;
  c.hidden = 96;
  c.ffn = 288;
  c.n_heads = 4;
  c.vocab_size = 16384;
  c.max_seq = 64;
  return c;
}

ModelConfig Qwen3Reranker4B() {
  ModelConfig c;
  c.name = "Qwen3-Reranker-4B";
  c.arch = ModelArch::kDecoderOnly;
  c.n_layers = 36;
  c.hidden = 128;
  c.ffn = 384;
  c.n_heads = 8;
  c.vocab_size = 16384;
  c.max_seq = 64;
  return c;
}

ModelConfig Qwen3Reranker8B() {
  ModelConfig c;
  c.name = "Qwen3-Reranker-8B";
  c.arch = ModelArch::kDecoderOnly;
  c.n_layers = 36;
  c.hidden = 160;
  c.ffn = 480;
  c.n_heads = 8;
  c.vocab_size = 16384;
  c.max_seq = 64;
  return c;
}

ModelConfig BgeRerankerV2MiniCpm() {
  ModelConfig c;
  c.name = "Bge-Reranker-v2-MiniCPM";
  c.arch = ModelArch::kDecoderOnly;
  c.n_layers = 40;
  c.hidden = 104;
  c.ffn = 312;
  c.quant_group = 8;  // Must divide hidden (104) and ffn (312).
  c.n_heads = 4;
  c.vocab_size = 16384;
  c.max_seq = 64;
  return c;
}

ModelConfig BgeRerankerV2M3() {
  ModelConfig c;
  c.name = "Bge-Reranker-v2-M3";
  c.arch = ModelArch::kEncoderOnly;
  c.n_layers = 24;
  c.hidden = 96;
  c.ffn = 384;
  c.n_heads = 4;
  c.vocab_size = 16384;
  c.max_seq = 64;
  return c;
}

std::vector<ModelConfig> ModelZoo() {
  return {Qwen3Reranker0_6B(), Qwen3Reranker4B(), Qwen3Reranker8B(), BgeRerankerV2MiniCpm(),
          BgeRerankerV2M3()};
}

ModelConfig ModelByName(const std::string& name) {
  for (const ModelConfig& c : ModelZoo()) {
    if (c.name == name) {
      return c;
    }
  }
  PRISM_CHECK_MSG(false, ("unknown model: " + name).c_str());
  return {};
}

ModelConfig TestModel(ModelArch arch) {
  ModelConfig c;
  c.name = arch == ModelArch::kDecoderOnly ? "test-decoder" : "test-encoder";
  c.arch = arch;
  c.n_layers = 4;
  c.hidden = 32;
  c.ffn = 64;
  c.n_heads = 2;
  c.vocab_size = 512;
  c.max_seq = 32;
  c.quant_group = 16;
  return c;
}

}  // namespace prism

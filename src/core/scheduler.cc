#include "src/core/scheduler.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace prism {

RerankResult MakeShedResult(double deadline_ms, double waited_ms) {
  RerankResult result;
  result.status = Status::DeadlineExceeded(
      "request shed: waited " + std::to_string(waited_ms) + " ms against a " +
      std::to_string(deadline_ms) + " ms deadline");
  result.stats.latency_ms = waited_ms;
  // A shed request's entire life was queue wait — it never reached an
  // engine. All three schedulers shed through here (SerialScheduler's
  // inline acquisition path and the RequestQueue expiry path alike), so the
  // admission-latency accounting stays exact under overload.
  result.stats.queue_wait_ms = waited_ms;
  return result;
}

RerankResult SerialScheduler::Submit(const RerankRequest& request) {
  const double arrived_ms = clock_->NowMs();
  std::unique_lock<std::mutex> lock(mu_);
  cv_->Wait(lock, [this] { return !busy_; });
  // The budget covers time spent queueing for the runner: if it ran out
  // while other requests held it, answer cheaply instead of running.
  const double waited_ms = clock_->NowMs() - arrived_ms;
  if (request.deadline_ms > 0.0 && waited_ms >= request.deadline_ms) {
    lock.unlock();
    cv_->NotifyOne();  // Hand the turn we were woken for to the next waiter.
    return MakeShedResult(request.deadline_ms, waited_ms);
  }
  busy_ = true;
  lock.unlock();
  RerankResult result = runner_->Rerank(request);
  result.stats.queue_wait_ms = waited_ms;
  lock.lock();
  busy_ = false;
  lock.unlock();
  cv_->NotifyOne();
  return result;
}

std::future<RerankResult> RequestQueue::Push(const RerankRequest& request,
                                             const std::atomic<uint64_t>* epoch) {
  std::future<RerankResult> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PRISM_CHECK_MSG(!closed_, "Push after Close");
    Pending pending;
    pending.request = &request;
    pending.ticket = next_ticket_++;
    pending.priority = request.priority;
    // The snapshot shares the queue mutex with the pops' epoch bump, so an
    // entry can never observe an admission event that already drained the
    // queue before it was inserted.
    pending.tag = epoch != nullptr ? epoch->load(std::memory_order_relaxed) : 0;
    pending.admitted_ms = clock_->NowMs();
    if (request.deadline_ms > 0.0) {
      pending.has_deadline = true;
      pending.deadline_at_ms = pending.admitted_ms + request.deadline_ms;
    }
    future = pending.promise.get_future();
    // Insert before the first strictly-lower-priority entry, scanning from
    // the back: equal priorities keep ticket (FIFO) order, and the
    // all-default-priority case inserts at the end immediately.
    auto pos = queue_.end();
    while (pos != queue_.begin() && std::prev(pos)->priority < pending.priority) {
      --pos;
    }
    queue_.insert(pos, std::move(pending));
  }
  cv_->NotifyOne();
  return future;
}

void RequestQueue::ShedExpiredLocked(std::vector<Pending>* shed) {
  // Shed every expired entry — wherever it sits in the order; a
  // low-priority request can expire behind higher classes.
  const double now_ms = clock_->NowMs();
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->ExpiredAt(now_ms)) {
      shed->push_back(std::move(*it));
      it = queue_.erase(it);
      ++shed_;
    } else {
      ++it;
    }
  }
}

std::vector<RequestQueue::Pending> RequestQueue::TakeLocked(size_t max_batch) {
  std::vector<Pending> batch;
  const size_t take = std::min(max_batch, queue_.size());
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;
}

namespace {

// An admission event: a pop handed out a non-empty batch. Must be called
// with the queue mutex held so Push's tag snapshots serialize against it.
void BumpEpochLocked(std::atomic<uint64_t>* epoch, const std::vector<RequestQueue::Pending>& batch) {
  if (epoch != nullptr && !batch.empty()) {
    epoch->fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

void RequestQueue::AnswerShed(std::vector<Pending> shed) {
  // Fulfil shed promises outside the lock (set_value wakes the caller).
  for (Pending& pending : shed) {
    const double waited_ms = clock_->NowMs() - pending.admitted_ms;
    clock_->PreWake();
    pending.promise.set_value(MakeShedResult(pending.request->deadline_ms, waited_ms));
  }
}

std::vector<RequestQueue::Pending> RequestQueue::PopBatch(size_t max_batch,
                                                          std::atomic<uint64_t>* epoch) {
  PRISM_CHECK_GT(max_batch, 0u);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_->Wait(lock, [this] { return closed_ || !queue_.empty(); });
    }
    // Let every producer active at this instant land its push before the
    // drain (a no-op on the wall clock): batch composition becomes a pure
    // function of the virtual arrival schedule, not host thread timing.
    clock_->YieldUntilQuiescent();
    std::vector<Pending> shed;
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ShedExpiredLocked(&shed);
      batch = TakeLocked(max_batch);
      BumpEpochLocked(epoch, batch);
      if (batch.empty() && shed.empty() && closed_) {
        return {};  // Closed and drained.
      }
    }
    AnswerShed(std::move(shed));
    if (!batch.empty()) {
      return batch;
    }
    // Everything pending was shed; wait for real work (or Close).
  }
}

std::vector<RequestQueue::Pending> RequestQueue::TryPopBatch(size_t max_batch,
                                                             std::atomic<uint64_t>* epoch) {
  // Same quiescence yield as PopBatch: a carousel boundary admits every
  // request issued by this virtual instant, deterministically.
  clock_->YieldUntilQuiescent();
  std::vector<Pending> shed;
  std::vector<Pending> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ShedExpiredLocked(&shed);
    batch = TakeLocked(max_batch);
    BumpEpochLocked(epoch, batch);
  }
  AnswerShed(std::move(shed));
  return batch;
}

std::vector<RequestQueue::Pending> RequestQueue::PopBatchFor(size_t max_batch, double timeout_ms,
                                                             std::atomic<uint64_t>* epoch) {
  PRISM_CHECK_GT(max_batch, 0u);
  const double give_up_ms = clock_->NowMs() + timeout_ms;
  for (;;) {
    bool timed_out = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      timed_out =
          !cv_->WaitUntil(lock, give_up_ms, [this] { return closed_ || !queue_.empty(); });
    }
    if (!timed_out) {
      clock_->YieldUntilQuiescent();
    }
    std::vector<Pending> shed;
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ShedExpiredLocked(&shed);
      batch = TakeLocked(max_batch);
      BumpEpochLocked(epoch, batch);
    }
    AnswerShed(std::move(shed));
    if (!batch.empty() || timed_out) {
      return batch;
    }
    if (clock_->NowMs() >= give_up_ms) {
      return {};
    }
    // Woken by Close or everything shed; retry within the window.
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ && queue_.empty()) {
      return {};
    }
  }
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_->NotifyAll();
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t RequestQueue::shed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

BatchScheduler::BatchScheduler(BatchRunner* runner, size_t max_inflight, size_t compute_threads,
                               Clock* clock)
    : runner_(runner), max_inflight_(max_inflight), clock_(ResolveClock(clock)), queue_(clock) {
  PRISM_CHECK_GT(max_inflight_, 0u);
  if (compute_threads == 0) {
    // At least one thread per batch slot: requests spend much of their layer
    // time waiting on the (simulated) device, so oversubscribing a small core
    // count still overlaps those waits across the batch.
    compute_threads = std::max<size_t>(std::thread::hardware_concurrency(), max_inflight_);
  }
  compute_pool_ = std::make_unique<ThreadPool>(compute_threads);
  // Announce the dispatcher before it exists: a SimClock must not advance
  // past tags scheduled "now" while the dispatcher thread is still starting.
  clock_->ExpectParticipants(1);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

BatchScheduler::~BatchScheduler() {
  queue_.Close();
  dispatcher_.join();
}

RerankResult BatchScheduler::Submit(const RerankRequest& request) {
  return AwaitFuture(clock_, queue_.Push(request));
}

void BatchScheduler::DispatchLoop() {
  // The dispatcher is a simulation participant: while it is runnable —
  // draining the queue, running a batch — virtual time stands still.
  const ClockMembership membership(clock_);
  for (;;) {
    std::vector<RequestQueue::Pending> batch = queue_.PopBatch(max_inflight_);
    if (batch.empty()) {
      return;  // Closed and drained.
    }
    const double dispatched_ms = clock_->NowMs();
    std::vector<const RerankRequest*> requests;
    requests.reserve(batch.size());
    for (const RequestQueue::Pending& pending : batch) {
      requests.push_back(pending.request);
    }
    std::vector<RerankResult> results = runner_->RerankBatch(requests, compute_pool_.get());
    PRISM_CHECK_EQ(results.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      results[i].stats.queue_wait_ms = dispatched_ms - batch[i].admitted_ms;
      clock_->PreWake();
      batch[i].promise.set_value(std::move(results[i]));
    }
  }
}

CarouselScheduler::CarouselScheduler(BatchRunner* runner, size_t max_inflight,
                                     size_t compute_threads, double linger_ms, Clock* clock)
    : runner_(runner),
      max_inflight_(max_inflight),
      linger_ms_(std::max(0.0, linger_ms)),
      clock_(ResolveClock(clock)),
      queue_(clock) {
  PRISM_CHECK_GT(max_inflight_, 0u);
  // Fail fast, on the constructing thread, if the runner cannot serve
  // step-wise execution — not from the dispatcher at first traffic. The
  // capability query is side-effect-free (no pass, no prefetch).
  PRISM_CHECK_MSG(runner_->SupportsCarousel(),
                  "runner does not support carousel execution");
  if (compute_threads == 0) {
    // Same sizing rationale as BatchScheduler: a thread per carousel slot
    // keeps device-wait-heavy requests overlapped even on few cores.
    compute_threads = std::max<size_t>(std::thread::hardware_concurrency(), max_inflight_);
  }
  compute_pool_ = std::make_unique<ThreadPool>(compute_threads);
  // Same startup handshake as BatchScheduler: reserve the dispatcher's
  // simulation membership before the thread exists.
  clock_->ExpectParticipants(1);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

CarouselScheduler::~CarouselScheduler() {
  queue_.Close();
  dispatcher_.join();
}

RerankResult CarouselScheduler::Submit(const RerankRequest& request) {
  // The queue snapshots boundary_seq_ under its mutex, so the dispatcher
  // can report exactly how many admission events this request waited (its
  // admission latency in cycle units).
  return AwaitFuture(clock_, queue_.Push(request, &boundary_seq_));
}

CarouselScheduler::Stats CarouselScheduler::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void CarouselScheduler::AdmitBoundary(CarouselPass* pass,
                                      std::vector<RequestQueue::Pending> batch,
                                      std::vector<Resident>* residents) {
  if (batch.empty()) {
    return;
  }
  // The pop that produced this batch already bumped boundary_seq_ inside
  // the queue mutex; every entry's tag was snapshotted under that same
  // mutex, so the difference is an exact admission-event count.
  const uint64_t boundary = boundary_seq_.load(std::memory_order_relaxed);
  const double now_ms = clock_->NowMs();
  std::vector<const RerankRequest*> requests;
  requests.reserve(batch.size());
  for (const RequestQueue::Pending& pending : batch) {
    requests.push_back(pending.request);
  }
  // One AdmitBatch call: the engine fans the joiners' embeds out across the
  // compute pool instead of serializing them while the carousel stalls.
  std::vector<std::unique_ptr<CarouselTicket>> tickets =
      pass->AdmitBatch(requests, compute_pool_.get());
  PRISM_CHECK_EQ(tickets.size(), batch.size());
  size_t max_wait = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    Resident resident;
    resident.queue_wait_ms = now_ms - batch[i].admitted_ms;
    resident.ticket = std::move(tickets[i]);
    resident.promise = std::move(batch[i].promise);
    max_wait = std::max(max_wait, static_cast<size_t>(boundary - batch[i].tag));
    residents->push_back(std::move(resident));
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.admitted += batch.size();
  stats_.max_boundary_wait = std::max(stats_.max_boundary_wait, max_wait);
}

void CarouselScheduler::DispatchLoop() {
  // Participant for the same reason as BatchScheduler::DispatchLoop.
  const ClockMembership membership(clock_);
  for (;;) {
    // Idle: block for traffic, then spin the carousel up for one busy
    // period. It keeps revolving as long as boundary admission finds work.
    std::vector<RequestQueue::Pending> batch = queue_.PopBatch(max_inflight_, &boundary_seq_);
    if (batch.empty()) {
      return;  // Closed and drained.
    }
    std::unique_ptr<CarouselPass> pass = runner_->BeginCarousel();
    PRISM_CHECK_MSG(pass != nullptr, "runner does not support carousel execution");
    const size_t n_layers = pass->n_layers();
    PRISM_CHECK_GT(n_layers, 0u);

    std::vector<Resident> residents;
    residents.reserve(max_inflight_);
    AdmitBoundary(pass.get(), std::move(batch), &residents);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.passes;
      ++stats_.cycles;
    }

    size_t layer = 0;
    while (!residents.empty()) {
      // Forward the depth group whose next-needed layer just arrived.
      std::vector<CarouselTicket*> group;
      group.reserve(residents.size());
      for (const Resident& resident : residents) {
        if (resident.ticket->next_layer() == layer) {
          group.push_back(resident.ticket.get());
        }
      }
      pass->Step(layer, group, compute_pool_.get());

      // Exit finished requests immediately — no waiting for batchmates.
      const bool mid_cycle = layer + 1 < n_layers;
      for (auto it = residents.begin(); it != residents.end();) {
        if (it->ticket->done()) {
          RerankResult result = it->ticket->TakeResult();
          result.stats.queue_wait_ms = it->queue_wait_ms;
          it->ticket.reset();
          if (mid_cycle) {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.exited_early;
          }
          clock_->PreWake();
          it->promise.set_value(std::move(result));
          it = residents.erase(it);
        } else {
          ++it;
        }
      }

      layer = (layer + 1) % n_layers;
      if (layer == 0 || residents.empty()) {
        // A boundary — either the natural wrap, or an early one because the
        // carousel drained mid-cycle. Realign first (a no-op at the wrap):
        // the prefetcher discards the skipped layers and starts warming the
        // next cycle's head immediately, so whoever joins next starts on
        // warm weights instead of a cold streamer.
        pass->SkipToNextCycle();
        layer = 0;
        std::vector<RequestQueue::Pending> joiners;
        if (residents.size() < max_inflight_) {
          joiners = queue_.TryPopBatch(max_inflight_ - residents.size(), &boundary_seq_);
        }
        AdmitBoundary(pass.get(), std::move(joiners), &residents);
        if (residents.empty()) {
          // Nothing to ride the next cycle. Linger briefly — pipeline warm,
          // layer 0 already loading — before tearing the pass down; a
          // request arriving inside the window skips the cold start.
          std::vector<RequestQueue::Pending> stragglers =
              queue_.PopBatchFor(max_inflight_, linger_ms_, &boundary_seq_);
          if (stragglers.empty()) {
            break;  // Idle (or closed): end the busy period.
          }
          AdmitBoundary(pass.get(), std::move(stragglers), &residents);
        }
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.cycles;
      }
    }
  }
}

}  // namespace prism

// Dynamic hidden-state offloading (paper §4.3, lower half of Fig. 6).
//
// When the candidate count scales, the aggregated hidden states of all chunks
// become the memory bottleneck. SpillPool writes a chunk's hidden-state tensor
// to the simulated SSD (releasing its memory), and prefetches it back before
// the chunk is next computed, so that at most three chunks are resident: one
// computing, one offloading, one prefetching.
//
// Thread-safe under disjoint keys: one pool is shared by every request in
// flight through the engine, and callers keep their keys disjoint
// (RequestContext::SpillKey namespaces chunk keys by request id). The entry
// map is mutex-guarded, but waits on a key's in-flight I/O happen *outside*
// the lock — one request's device-speed spill never stalls another's. Using
// the same key from two threads concurrently is undefined.
//
// Take() and Drop() erase the consumed entry, so the map stays bounded in
// the number of live chunks. Disk space is append-only (cursor model, like
// the checkpoint writer) and reclaimed when the pool is destroyed.
#ifndef PRISM_SRC_STORAGE_HIDDEN_SPILL_H_
#define PRISM_SRC_STORAGE_HIDDEN_SPILL_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/common/annotations.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/storage/ssd.h"
#include "src/tensor/tensor.h"

namespace prism {

class SpillPool {
 public:
  // Spilled data lives in a dedicated temp file behind its own device handle
  // (sharing the weight device would let spill traffic and weight prefetch
  // contend, which is realistic — pass the same SimulatedSsd for that).
  explicit SpillPool(SsdConfig config, MemoryTracker* tracker = &MemoryTracker::Global());
  ~SpillPool();

  SpillPool(const SpillPool&) = delete;
  SpillPool& operator=(const SpillPool&) = delete;

  // Asynchronously writes `t` out and drops it from memory. Blocks only if a
  // previous spill of the same key is still in flight.
  void SpillAsync(int64_t key, Tensor t);

  // Starts reading the tensor for `key` back into memory.
  void PrefetchAsync(int64_t key);

  // Returns the tensor for `key`, blocking on any in-flight I/O. The entry is
  // consumed (a later Spill of the same key re-creates it).
  Tensor Take(int64_t key);

  // Discards `key` without reading it back (waits out any in-flight I/O and
  // releases the entry — used for chunks still parked on disk when pruning
  // terminates a request early). No-op if the key is absent.
  void Drop(int64_t key);

  int64_t bytes_on_disk() const;

  // Entries currently parked (spilled but not yet taken or dropped). A
  // healthy service returns to 0 between requests; tests use this to prove
  // early termination and fault paths do not leak chunks.
  size_t live_entries() const;

 private:
  struct Entry {
    int64_t offset = 0;
    size_t rows = 0;
    size_t cols = 0;
    std::future<void> spill_done;
    std::optional<Tensor> prefetched;
    std::future<void> prefetch_done;
  };

  // Looks up (or creates) the entry for `key`. Entry field access outside
  // mu_ is safe because keys are single-owner; mu_ only guards the map.
  Entry* FindEntry(int64_t key);
  static void WaitSpill(Entry& entry);

  std::unique_ptr<SimulatedSsd> ssd_;
  MemoryTracker* tracker_;
  mutable Mutex mu_;
  // The map structure is guarded; the Entry values a FindEntry pointer leads
  // to are deliberately NOT — each key has a single owner (see file comment),
  // so entry-field access happens outside the lock by design.
  std::map<int64_t, Entry> entries_ PRISM_GUARDED_BY(mu_);
  int64_t cursor_ PRISM_GUARDED_BY(mu_) = 0;
  std::string path_;
};

}  // namespace prism

#endif  // PRISM_SRC_STORAGE_HIDDEN_SPILL_H_

#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "src/common/check.h"

namespace prism {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : threads_) {
    t.join();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    MutexLock lock(mu_);
    PRISM_CHECK_MSG(!shutting_down_, "Submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return fut;
}

void ThreadPool::ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  const size_t n = end - begin;
  const size_t workers = threads_.size();
  if (workers <= 1 || n == 1) {
    for (size_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }
  std::atomic<size_t> next{begin};
  auto drain = [&] {
    size_t i;
    while ((i = next.fetch_add(1, std::memory_order_relaxed)) < end) {
      fn(i);
    }
  };
  std::vector<std::future<void>> futures;
  const size_t helpers = std::min(workers, n - 1);
  futures.reserve(helpers);
  for (size_t w = 0; w < helpers; ++w) {
    futures.push_back(Submit(drain));
  }
  drain();
  for (auto& f : futures) {
    f.get();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) {
        cv_.Wait(mu_);
      }
      if (queue_.empty()) {
        return;  // Shutting down and drained.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& GlobalIoPool() {
  static ThreadPool* pool = new ThreadPool(2);
  return *pool;
}

}  // namespace prism

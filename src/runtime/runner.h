// Common reranker-runner interface shared by the baselines and PRISM.
//
// Contract:
//  - Rerank() is synchronous: it returns only when `result.status` and, on
//    success, `result.topk` (best first) and `result.scores` (NaN for
//    candidates pruned before scoring) are final. When `status.ok()`,
//    `topk.size() == min(request.k, request.docs.size())`; when it is not
//    (an injected fault, a shed deadline), topk is empty and scores carry
//    no ranking (empty or all-NaN) — callers must check `status` before
//    touching either.
//  - Determinism: the same request against the same checkpoint and options
//    yields bit-identical topk/scores; only the timing fields of
//    RerankStats may vary between runs.
//  - Threading: implementations are not required to be thread-safe;
//    serialise calls externally (RerankService's SerialScheduler) unless an
//    implementation documents stronger guarantees. PrismEngine does:
//    concurrent Rerank/RerankBatch calls are safe, and batching preserves
//    the per-request determinism above.
#ifndef PRISM_SRC_RUNTIME_RUNNER_H_
#define PRISM_SRC_RUNTIME_RUNNER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/dataset.h"
#include "src/model/config.h"

namespace prism {

class ThreadPool;

struct RerankRequest {
  std::vector<uint32_t> query;
  std::vector<std::vector<uint32_t>> docs;
  std::vector<float> planted_r;  // One per doc (see pair_encoder.h).
  size_t k = 5;

  // Admission class: higher-priority requests are dispatched first
  // (priority-then-FIFO, see RequestQueue in src/core/scheduler.h). 0 is the
  // default class; runners themselves ignore the field.
  int priority = 0;

  // Time budget measured from admission (Scheduler::Submit). <= 0 means no
  // deadline. A request still queued when its budget expires is shed: it
  // returns a kDeadlineExceeded result without burning an engine pass.
  double deadline_ms = 0.0;

  static RerankRequest FromQuery(const RerankQuery& q, size_t k);
};

struct RerankStats {
  double latency_ms = 0.0;
  double embed_ms = 0.0;
  double compute_ms = 0.0;
  double io_stall_ms = 0.0;   // Compute-visible I/O waits.
  // Admission latency: time between entering a scheduler's queue and the
  // first engine work on the request's behalf (planning/embedding). Filled
  // by the schedulers; 0 for direct engine use.
  double queue_wait_ms = 0.0;
  // Time from engine admission until this request's first layer forward
  // begins — embed plus the wait for layer 0's weights (a cold streamer
  // start shows up here; a carousel wrap's warm prefetch does not).
  // queue_wait_ms + first_layer_ms is the request's time-to-first-layer.
  double first_layer_ms = 0.0;
  int64_t candidate_layers = 0;  // Σ over layers of active candidates (work).
  int64_t bytes_streamed = 0;
  double embed_cache_hit_rate = -1.0;  // <0 when no cache in use.
  size_t layers_until_done = 0;        // Last layer index executed + 1.
};

struct RerankResult {
  // Ok for a served request. kDeadlineExceeded when the request was shed
  // before reaching an engine, kIoError (etc.) when a device fault surfaced;
  // topk/scores carry no ranking in either failure case.
  Status status;
  std::vector<size_t> topk;    // Candidate indices, best first.
  std::vector<float> scores;   // Score per candidate; NaN if pruned early.
  RerankStats stats;
};

class Runner {
 public:
  virtual ~Runner() = default;
  virtual RerankResult Rerank(const RerankRequest& request) = 0;
  virtual std::string name() const = 0;
};

// One request riding a carousel pass (see CarouselPass). A ticket is the
// per-request handle the CarouselScheduler holds between admission and exit:
// it reports which layer the request needs next, whether the request has
// finished (terminated by pruning, ran out of layers, or failed), and —
// exactly once, after done() — yields the final RerankResult.
//
// Threading: tickets are confined to the thread driving their pass; only
// Step's internal compute fan-out is parallel. A ticket must not outlive its
// pass. Destroying a ticket before TakeResult abandons the request: the
// implementation must release any per-request resources it parked (e.g.
// spilled hidden-state chunks), so an abandoned ticket never leaks.
class CarouselTicket {
 public:
  virtual ~CarouselTicket() = default;

  // The next layer this request must be forwarded through. Meaningless once
  // done().
  virtual size_t next_layer() const = 0;
  virtual bool done() const = 0;

  // Finalizes and returns the request's result (status, topk, scores,
  // stats). Call exactly once, only after done().
  virtual RerankResult TakeResult() = 0;
};

// A cyclic layer pass shared by every in-flight request — the layer
// carousel. The driver admits requests, then calls Step for layers
// 0, 1, …, L-1, 0, 1, … in order; at each arriving layer it passes the group
// of tickets whose next_layer() matches. One weight fetch per step serves
// the whole group, and the implementation's prefetcher keeps the next
// layers warm across the wrap, so a pass that stays populated never pays a
// cold start between cycles (unlike one RerankBatch pass per batch).
//
// Threading: a pass and its tickets belong to one driver thread; Step may
// fan per-ticket compute out across `compute_pool`.
class CarouselPass {
 public:
  virtual ~CarouselPass() = default;

  virtual size_t n_layers() const = 0;

  // Plans and embeds the request; the returned ticket needs layer 0 next.
  // Admit only at a cycle boundary (before stepping layer 0).
  virtual std::unique_ptr<CarouselTicket> Admit(const RerankRequest& request) = 0;

  // Admits a whole boundary's joiners at once. Implementations may fan the
  // per-request planning/embedding out across `compute_pool` (the engine
  // does — a boundary with N joiners should not serialize N embeds while
  // the carousel stalls); the default just loops Admit. tickets[i]
  // corresponds to requests[i].
  virtual std::vector<std::unique_ptr<CarouselTicket>> AdmitBatch(
      std::span<const RerankRequest* const> requests, ThreadPool* compute_pool) {
    (void)compute_pool;
    std::vector<std::unique_ptr<CarouselTicket>> tickets;
    tickets.reserve(requests.size());
    for (const RerankRequest* request : requests) {
      tickets.push_back(Admit(*request));
    }
    return tickets;
  }

  // Forwards every ticket in `group` through `layer` (all must report
  // next_layer() == layer and not be done). The group may be empty — the
  // pass still consumes the scheduled position so the walk stays aligned.
  // Layers must be stepped in cyclic order from 0.
  virtual void Step(size_t layer, std::span<CarouselTicket* const> group,
                    ThreadPool* compute_pool) = 0;

  // Abandons the rest of the current cycle and realigns the walk at the next
  // cycle's layer 0 (used when every resident request exited mid-cycle but
  // new ones are queued — their layers need not be fetched).
  virtual void SkipToNextCycle() = 0;
};

// A runner that can additionally serve several requests as one coalesced
// pass. BatchScheduler drives this interface, which is what lets tests slot
// a fault-injection wrapper (tests/fault_injection.h) between the scheduler
// and the real engine. The contract extends Runner's: results[i] corresponds
// to requests[i], each result's status is per-request (one failing request
// must not poison its batchmates), and when `compute_pool` is non-null the
// implementation may fan per-request work out across it.
class BatchRunner : public Runner {
 public:
  virtual std::vector<RerankResult> RerankBatch(std::span<const RerankRequest* const> requests,
                                                ThreadPool* compute_pool = nullptr) = 0;

  // Carousel capability (continuous batching, CarouselScheduler). A runner
  // that returns true from SupportsCarousel must return a non-null pass
  // from BeginCarousel; results must stay bit-identical to serial Rerank
  // per request — only fetch sharing and admission timing may differ.
  // CarouselScheduler refuses an unsupporting runner at construction (the
  // capability query is side-effect-free, unlike opening a pass, which may
  // start prefetching).
  virtual bool SupportsCarousel() const { return false; }
  virtual std::unique_ptr<CarouselPass> BeginCarousel() { return nullptr; }
};

}  // namespace prism

#endif  // PRISM_SRC_RUNTIME_RUNNER_H_

// Concurrency tests for the staged pipeline and the batching service
// front-end. The load-bearing property throughout: results through any
// scheduler, batch size, or thread count are bit-identical to the serial
// path. This binary is also the main ThreadSanitizer target in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/scheduler.h"
#include "src/core/service.h"
#include "tests/test_util.h"

namespace prism {
namespace {

std::vector<RerankRequest> MakeRequests(const ModelConfig& config, size_t count) {
  std::vector<RerankRequest> requests;
  requests.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    requests.push_back(TestRequest(config, 12 + i % 3, 3, i));
  }
  return requests;
}

class ServiceConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = TestModel();
    ckpt_ = TestCheckpoint(config_);
    requests_ = MakeRequests(config_, 6);
  }

  ServiceOptions ConcurrentOptions(size_t max_inflight) const {
    ServiceOptions options;
    options.engine.device = FastDevice();
    options.max_inflight = max_inflight;
    options.compute_threads = 4;
    return options;
  }

  std::vector<RerankResult> SerialReference() {
    MemoryTracker tracker;
    ServiceOptions options;
    options.engine.device = FastDevice();
    RerankService service(config_, ckpt_, options, &tracker);
    std::vector<RerankResult> results;
    results.reserve(requests_.size());
    for (const RerankRequest& request : requests_) {
      results.push_back(service.Rerank(request));
    }
    return results;
  }

  ModelConfig config_;
  std::string ckpt_;
  std::vector<RerankRequest> requests_;
};

TEST(RequestQueueTest, PopsInAdmissionOrder) {
  RequestQueue queue;
  const ModelConfig config = TestModel();
  std::vector<RerankRequest> requests = MakeRequests(config, 5);
  std::vector<std::future<RerankResult>> futures;
  for (const RerankRequest& request : requests) {
    futures.push_back(queue.Push(request));
  }
  EXPECT_EQ(queue.size(), 5u);
  std::vector<RequestQueue::Pending> first = queue.PopBatch(3);
  ASSERT_EQ(first.size(), 3u);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].ticket, i);
    EXPECT_EQ(first[i].request, &requests[i]);
  }
  std::vector<RequestQueue::Pending> rest = queue.PopBatch(10);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].ticket, 3u);
  EXPECT_EQ(rest[1].ticket, 4u);
  // Fulfil so the futures don't dangle.
  for (auto& pending : first) {
    pending.promise.set_value(RerankResult{});
  }
  for (auto& pending : rest) {
    pending.promise.set_value(RerankResult{});
  }
}

TEST(RequestQueueTest, PriorityThenFifoOrder) {
  RequestQueue queue;
  const ModelConfig config = TestModel();
  std::vector<RerankRequest> requests = MakeRequests(config, 6);
  // Tickets 0..5; priorities: 0, 2, 1, 2, 0, 1.
  const int priorities[] = {0, 2, 1, 2, 0, 1};
  std::vector<std::future<RerankResult>> futures;
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].priority = priorities[i];
    futures.push_back(queue.Push(requests[i]));
  }
  // Expected pop order: priority desc, ticket asc → 1, 3 (pri 2); 2, 5
  // (pri 1); 0, 4 (pri 0).
  const uint64_t expected[] = {1, 3, 2, 5, 0, 4};
  std::vector<RequestQueue::Pending> batch = queue.PopBatch(6);
  ASSERT_EQ(batch.size(), 6u);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].ticket, expected[i]) << "position " << i;
  }
  for (auto& pending : batch) {
    pending.promise.set_value(RerankResult{});
  }
}

TEST(RequestQueueTest, ExpiredEntriesAreShedWithErrorResult) {
  RequestQueue queue;
  const ModelConfig config = TestModel();
  std::vector<RerankRequest> requests = MakeRequests(config, 3);
  requests[0].deadline_ms = 0.01;
  requests[2].deadline_ms = 0.01;  // requests[1] has no deadline.
  std::vector<std::future<RerankResult>> futures;
  for (const RerankRequest& request : requests) {
    futures.push_back(queue.Push(request));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  std::vector<RequestQueue::Pending> batch = queue.PopBatch(4);
  ASSERT_EQ(batch.size(), 1u);  // Only the undeadlined entry survives.
  EXPECT_EQ(batch[0].ticket, 1u);
  batch[0].promise.set_value(RerankResult{});
  EXPECT_EQ(queue.shed_count(), 2u);
  for (size_t i : {size_t{0}, size_t{2}}) {
    const RerankResult shed = futures[i].get();
    EXPECT_EQ(shed.status.code(), StatusCode::kDeadlineExceeded) << "request " << i;
    EXPECT_TRUE(shed.topk.empty());
  }
  EXPECT_TRUE(futures[1].get().status.ok());
}

// 16 producers hammer the queue with mixed priorities and deadlines while
// one consumer drains it. Invariants: every popped batch is sorted by
// (priority desc, ticket asc); within a priority class tickets dispatch
// in strictly increasing (FIFO) order across the whole run; every future
// resolves — served requests with OK, shed requests with
// kDeadlineExceeded; nothing is lost or double-delivered. Both staging
// modes must uphold the identical contract.
void SixteenThreadStress(bool lock_free, size_t ring_capacity) {
  constexpr size_t kThreads = 16;
  constexpr size_t kPerThread = 8;
  constexpr size_t kTotal = kThreads * kPerThread;
  const ModelConfig config = TestModel();
  const RerankRequest base = TestRequest(config, 8, 2);

  RequestQueue queue(/*clock=*/nullptr, lock_free, ring_capacity);
  std::atomic<size_t> served{0};
  std::map<int, std::vector<uint64_t>> popped_by_priority;
  std::thread consumer([&] {
    for (;;) {
      std::vector<RequestQueue::Pending> batch = queue.PopBatch(4);
      if (batch.empty()) {
        return;  // Closed and drained.
      }
      for (size_t i = 0; i < batch.size(); ++i) {
        if (i > 0) {
          const bool ordered =
              batch[i - 1].priority > batch[i].priority ||
              (batch[i - 1].priority == batch[i].priority &&
               batch[i - 1].ticket < batch[i].ticket);
          EXPECT_TRUE(ordered) << "batch not in (priority desc, ticket asc) order at " << i;
        }
        popped_by_priority[batch[i].priority].push_back(batch[i].ticket);
      }
      // Stall occasionally so tight deadlines genuinely expire in-queue.
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      for (auto& pending : batch) {
        RerankResult result;
        result.scores.push_back(static_cast<float>(pending.ticket));
        pending.promise.set_value(std::move(result));
        served.fetch_add(1);
      }
    }
  });

  std::vector<std::thread> producers;
  std::atomic<size_t> ok_seen{0};
  std::atomic<size_t> shed_seen{0};
  for (size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      std::vector<RerankRequest> mine(kPerThread, base);
      std::vector<std::future<RerankResult>> futures;
      for (size_t i = 0; i < kPerThread; ++i) {
        mine[i].priority = static_cast<int>((t + i) % 4) - 1;
        if (i % 2 == 1) {
          mine[i].deadline_ms = 0.05;  // Expires unless popped immediately.
        }
        futures.push_back(queue.Push(mine[i]));
      }
      for (auto& future : futures) {
        const RerankResult result = future.get();
        if (result.status.ok()) {
          ok_seen.fetch_add(1);
        } else {
          EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
          EXPECT_TRUE(result.topk.empty());
          shed_seen.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : producers) {
    t.join();
  }
  queue.Close();
  consumer.join();

  EXPECT_EQ(ok_seen.load() + shed_seen.load(), kTotal);
  EXPECT_EQ(served.load(), ok_seen.load());
  EXPECT_EQ(queue.shed_count(), shed_seen.load());
  EXPECT_GT(shed_seen.load(), 0u) << "no deadline expired under a stalling consumer";
  EXPECT_GT(ok_seen.load(), 0u);
  // FIFO within a priority class, across the whole run.
  size_t total_popped = 0;
  for (const auto& [priority, tickets] : popped_by_priority) {
    for (size_t i = 1; i < tickets.size(); ++i) {
      EXPECT_LT(tickets[i - 1], tickets[i])
          << "priority " << priority << " dispatched out of FIFO order";
    }
    total_popped += tickets.size();
  }
  EXPECT_EQ(total_popped, ok_seen.load());
}

TEST(RequestQueueTest, SixteenThreadStressKeepsPriorityThenFifoSemantics) {
  SixteenThreadStress(/*lock_free=*/true, RequestQueue::kDefaultRingCapacity);
}

TEST(RequestQueueTest, SixteenThreadStressMutexModeIsEquivalent) {
  SixteenThreadStress(/*lock_free=*/false, RequestQueue::kDefaultRingCapacity);
}

TEST(RequestQueueTest, SixteenThreadStressSurvivesTinyRingBackpressure) {
  // An 8-slot ring against 16 producers: staging overflows constantly, so
  // producers exercise the full-ring park/wake path while the contract
  // stays intact.
  SixteenThreadStress(/*lock_free=*/true, /*ring_capacity=*/8);
}

TEST(RequestQueueTest, CloseDrainsThenReturnsEmpty) {
  RequestQueue queue;
  const ModelConfig config = TestModel();
  const RerankRequest request = TestRequest(config, 10, 3);
  auto future = queue.Push(request);
  queue.Close();
  std::vector<RequestQueue::Pending> batch = queue.PopBatch(4);
  ASSERT_EQ(batch.size(), 1u);
  batch[0].promise.set_value(RerankResult{});
  EXPECT_TRUE(queue.PopBatch(4).empty());
  future.get();
}

TEST_F(ServiceConcurrencyTest, EngineBatchMatchesSerial) {
  // One coalesced RerankBatch pass == N serial Rerank calls, bit for bit.
  MemoryTracker t1;
  MemoryTracker t2;
  PrismOptions options;
  options.device = FastDevice();
  PrismEngine serial_engine(config_, ckpt_, options, &t1);
  PrismEngine batch_engine(config_, ckpt_, options, &t2);

  std::vector<const RerankRequest*> pointers;
  for (const RerankRequest& request : requests_) {
    pointers.push_back(&request);
  }
  ThreadPool pool(4);
  const std::vector<RerankResult> batched = batch_engine.RerankBatch(pointers, &pool);
  ASSERT_EQ(batched.size(), requests_.size());
  for (size_t i = 0; i < requests_.size(); ++i) {
    const RerankResult serial = serial_engine.Rerank(requests_[i]);
    EXPECT_EQ(batched[i].topk, serial.topk) << "request " << i;
    EXPECT_EQ(batched[i].scores, serial.scores) << "request " << i;
  }
}

TEST_F(ServiceConcurrencyTest, ConcurrentServiceMatchesSerialBitIdentically) {
  const std::vector<RerankResult> reference = SerialReference();

  MemoryTracker tracker;
  RerankService service(config_, ckpt_, ConcurrentOptions(4), &tracker);
  std::vector<RerankResult> results(requests_.size());
  std::vector<std::thread> clients;
  clients.reserve(requests_.size());
  for (size_t i = 0; i < requests_.size(); ++i) {
    clients.emplace_back([&, i] { results[i] = service.Rerank(requests_[i]); });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (size_t i = 0; i < requests_.size(); ++i) {
    EXPECT_EQ(results[i].topk, reference[i].topk) << "request " << i;
    EXPECT_EQ(results[i].scores, reference[i].scores) << "request " << i;
  }
}

TEST_F(ServiceConcurrencyTest, IdenticalRequestsFromManyThreadsAgree) {
  const RerankRequest request = TestRequest(config_, 14, 4);
  MemoryTracker t1;
  ServiceOptions serial_options;
  serial_options.engine.device = FastDevice();
  RerankService serial(config_, ckpt_, serial_options, &t1);
  const RerankResult expected = serial.Rerank(request);

  MemoryTracker t2;
  RerankService service(config_, ckpt_, ConcurrentOptions(4), &t2);
  constexpr size_t kThreads = 8;
  std::vector<RerankResult> results(kThreads);
  std::vector<std::thread> clients;
  for (size_t i = 0; i < kThreads; ++i) {
    clients.emplace_back([&, i] { results[i] = service.Rerank(request); });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (size_t i = 0; i < kThreads; ++i) {
    EXPECT_EQ(results[i].topk, expected.topk) << "thread " << i;
    EXPECT_EQ(results[i].scores, expected.scores) << "thread " << i;
  }
}

TEST_F(ServiceConcurrencyTest, OffloadAndSpillSafeAcrossConcurrentRequests) {
  // Hidden-state offload shares one SpillPool across the batch; per-request
  // key namespacing must keep round-trips exact.
  ServiceOptions options = ConcurrentOptions(3);
  options.engine.offload_hidden = true;
  options.engine.chunk_candidates = 3;

  MemoryTracker t1;
  ServiceOptions serial_options;
  serial_options.engine = options.engine;
  RerankService serial(config_, ckpt_, serial_options, &t1);
  std::vector<RerankResult> reference;
  for (const RerankRequest& request : requests_) {
    reference.push_back(serial.Rerank(request));
  }

  MemoryTracker t2;
  RerankService service(config_, ckpt_, options, &t2);
  std::vector<RerankResult> results(requests_.size());
  std::vector<std::thread> clients;
  for (size_t i = 0; i < requests_.size(); ++i) {
    clients.emplace_back([&, i] { results[i] = service.Rerank(requests_[i]); });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (size_t i = 0; i < requests_.size(); ++i) {
    EXPECT_EQ(results[i].topk, reference[i].topk) << "request " << i;
    EXPECT_EQ(results[i].scores, reference[i].scores) << "request " << i;
  }
}

// The carousel equivalence net (ISSUE 4): a seeded multi-client run with
// mixed priorities, deadlines, and staggered arrivals through the carousel
// scheduler must produce, for every served request, a result bit-identical
// to the SerialScheduler's for the same request. Deadlined requests may
// legitimately be shed instead — but then they must carry exactly
// kDeadlineExceeded and no ranking. CI's concurrency-stress lane fails if
// this test is skipped.
TEST_F(ServiceConcurrencyTest, CarouselServiceMatchesSerialBitIdentically) {
  constexpr size_t kRequests = 18;
  Rng rng(0xCA805E1u);
  std::vector<RerankRequest> requests;
  requests.reserve(kRequests);
  for (size_t i = 0; i < kRequests; ++i) {
    requests.push_back(TestRequest(config_, 8 + rng.NextBelow(6), 2 + rng.NextBelow(3), i));
    requests.back().priority = static_cast<int>(rng.NextBelow(3)) - 1;
    if (i % 5 == 4) {
      // A generous deadline: long enough to be served on a sane host, but a
      // legitimate shed (kDeadlineExceeded, empty topk) is also accepted.
      requests.back().deadline_ms = 2000.0;
    }
  }

  // Serial reference (no deadlines so every reference result is served).
  std::vector<RerankResult> reference(requests.size());
  {
    MemoryTracker tracker;
    ServiceOptions options;
    options.engine.device = FastDevice();
    RerankService serial(config_, ckpt_, options, &tracker);
    for (size_t i = 0; i < requests.size(); ++i) {
      RerankRequest plain = requests[i];
      plain.deadline_ms = 0.0;
      reference[i] = serial.Rerank(plain);
    }
  }

  MemoryTracker tracker;
  ServiceOptions options;
  options.engine.device = FastDevice();
  options.scheduler = SchedulerKind::kCarousel;
  options.max_inflight = 4;
  options.compute_threads = 4;
  RerankService service(config_, ckpt_, options, &tracker);

  std::vector<RerankResult> results(requests.size());
  std::vector<std::thread> clients;
  clients.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    clients.emplace_back([&, i] {
      // Staggered arrivals: later clients reach the queue while the carousel
      // is mid-cycle, exercising boundary admission.
      std::this_thread::sleep_for(std::chrono::microseconds(200 * i));
      results[i] = service.Rerank(requests[i]);
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }

  size_t served = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (results[i].status.ok()) {
      ++served;
      EXPECT_EQ(results[i].topk, reference[i].topk) << "request " << i;
      EXPECT_EQ(results[i].scores, reference[i].scores) << "request " << i;
      EXPECT_EQ(results[i].stats.layers_until_done, reference[i].stats.layers_until_done)
          << "request " << i;
    } else {
      EXPECT_EQ(results[i].status.code(), StatusCode::kDeadlineExceeded) << "request " << i;
      EXPECT_TRUE(results[i].topk.empty()) << "request " << i;
    }
  }
  EXPECT_GT(served, 0u);

  const auto& carousel = dynamic_cast<const CarouselScheduler&>(service.scheduler());
  const CarouselScheduler::Stats stats = carousel.stats();
  EXPECT_EQ(stats.admitted, served);
  EXPECT_GE(stats.cycles, stats.passes);
}

// Admission latency: a request that arrives while the carousel is busy is
// admitted at the next layer-0 boundary — it waits at most one cycle
// interval, not a full pass. Measured in boundary units (admission-event
// counts through the queue's race-free epoch protocol), so the assertion is
// immune to wall-clock noise: with free capacity every request sees exactly
// one admission event between enqueue and admission.
TEST_F(ServiceConcurrencyTest, CarouselAdmitsWithinOneCycleBoundary) {
  MemoryTracker tracker;
  ServiceOptions options;
  options.engine.device = FastDevice();
  options.scheduler = SchedulerKind::kCarousel;
  options.max_inflight = 8;  // More slots than clients: capacity never binds.
  options.compute_threads = 4;
  RerankService service(config_, ckpt_, options, &tracker);

  constexpr size_t kClients = 6;
  std::vector<RerankResult> results(kClients);
  std::vector<std::thread> clients;
  for (size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      std::this_thread::sleep_for(std::chrono::microseconds(300 * i));
      results[i] = service.Rerank(requests_[i % requests_.size()]);
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(results[i].status.ok()) << "request " << i;
    EXPECT_GE(results[i].stats.queue_wait_ms, 0.0) << "request " << i;
  }
  const auto& carousel = dynamic_cast<const CarouselScheduler&>(service.scheduler());
  EXPECT_LE(carousel.stats().max_boundary_wait, 1u);
  EXPECT_EQ(carousel.stats().admitted, kClients);
}

TEST_F(ServiceConcurrencyTest, StatsAggregateUnderConcurrency) {
  MemoryTracker tracker;
  RerankService service(config_, ckpt_, ConcurrentOptions(4), &tracker);
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 3;
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        service.Rerank(requests_[(t * kPerThread + i) % requests_.size()]);
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kThreads * kPerThread);
  EXPECT_GT(stats.MeanLatencyMs(), 0.0);
  EXPECT_GE(stats.max_latency_ms, stats.MeanLatencyMs());
  EXPECT_GT(stats.P50LatencyMs(), 0.0);
  EXPECT_GE(stats.P99LatencyMs(), stats.P50LatencyMs());
  EXPECT_GT(stats.total_candidates, 0);
}

TEST_F(ServiceConcurrencyTest, ThresholdNudgesAreSafeWhileServing) {
  // The OnlineCalibrator adjusts the dispersion threshold while requests are
  // in flight; the engine stores it atomically. Run a writer thread against
  // concurrent engine-level requests (TSan validates the absence of races).
  MemoryTracker tracker;
  PrismOptions options;
  options.device = FastDevice();
  PrismEngine engine(config_, ckpt_, options, &tracker);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    float threshold = 0.05f;
    while (!stop.load()) {
      engine.set_dispersion_threshold(threshold);
      threshold = threshold >= 1.0f ? 0.05f : threshold * 1.1f;
    }
  });
  std::vector<std::thread> clients;
  for (size_t i = 0; i < 3; ++i) {
    clients.emplace_back([&, i] {
      for (size_t r = 0; r < 4; ++r) {
        const RerankResult result = engine.Rerank(requests_[(i + r) % requests_.size()]);
        EXPECT_EQ(result.topk.size(), 3u);
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(engine.dispersion_threshold(), 0.0f);
}

TEST_F(ServiceConcurrencyTest, OnIdleOverlapsServingSafely) {
  // The calibrator's sample log is mutex-guarded, so an idle-cycle thread
  // may run while serving threads push samples (serving itself is
  // serialised by the scheduler). TSan validates the locking.
  MemoryTracker tracker;
  ServiceOptions options;
  options.engine.device = FastDevice();
  options.online_calibration = true;
  options.calibration.sample_every = 1;
  RerankService service(config_, ckpt_, options, &tracker);
  std::atomic<bool> stop{false};
  std::thread idler([&] {
    while (!stop.load()) {
      service.OnIdle();
    }
  });
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < 4; ++r) {
        const RerankResult result = service.Rerank(requests_[(c * 4 + r) % requests_.size()]);
        EXPECT_EQ(result.topk.size(), 3u);
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  stop.store(true);
  idler.join();
  EXPECT_EQ(service.stats().requests, 8u);
}

TEST(ServiceStatsTest, PercentilesFromRing) {
  ServiceStats stats;
  RerankRequest request;
  request.docs.resize(1);
  request.planted_r.resize(1);
  RerankResult result;
  for (int i = 1; i <= 100; ++i) {
    stats.Observe(request, result, static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(stats.P50LatencyMs(), 50.0);
  EXPECT_DOUBLE_EQ(stats.P99LatencyMs(), 99.0);
  EXPECT_DOUBLE_EQ(stats.LatencyPercentileMs(100.0), 100.0);
  EXPECT_DOUBLE_EQ(stats.LatencyPercentileMs(0.0), 1.0);
  EXPECT_EQ(stats.requests, 100u);
  EXPECT_DOUBLE_EQ(stats.max_latency_ms, 100.0);
}

TEST(ServiceStatsTest, ReservoirSamplesWholeRunBeyondCapacity) {
  ServiceStats stats;
  RerankRequest request;
  RerankResult result;
  const size_t total = ServiceStats::kDefaultLatencySampleCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    stats.Observe(request, result, static_cast<double>(i));
  }
  EXPECT_EQ(stats.latency_samples.size(), ServiceStats::kDefaultLatencySampleCapacity);
  EXPECT_EQ(stats.latency_observed, total);
  // Unlike the old most-recent-window ring, the reservoir keeps a uniform
  // sample of the whole run: early observations survive. With 100 extras
  // over capacity the expected early-sample retention is ~90%, so at least
  // one of the first hundred values (all < 100) is retained with
  // overwhelming probability for any fixed seed.
  EXPECT_LT(stats.LatencyPercentileMs(0.0), 100.0);
}

TEST(ServiceStatsTest, ReservoirIsDeterministicForFixedObservationOrder) {
  RerankRequest request;
  RerankResult result;
  ServiceStats a;
  ServiceStats b;
  for (size_t i = 0; i < ServiceStats::kDefaultLatencySampleCapacity + 500; ++i) {
    a.Observe(request, result, static_cast<double>(i));
    b.Observe(request, result, static_cast<double>(i));
  }
  EXPECT_EQ(a.latency_samples, b.latency_samples);
}

// Hammer a ConcurrentServiceStats from `n_threads` writers while a reader
// snapshots continuously, then check the final fold balances to the exact
// per-thread plan. Latencies are small integers so the CAS-looped double
// adds must sum exactly regardless of interleaving order.
void StripedStatsStress(size_t n_threads) {
  ConcurrentServiceStats stats;
  constexpr size_t kPerThread = 2000;
  RerankRequest request;
  request.docs.resize(3);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // Mid-flight folds may tear between a stripe's counters; they must
      // stay internally sane (clamped served, no wrapped rates), never
      // crash or report more served than admitted.
      const ServiceStats snapshot = stats.Snapshot();
      ASSERT_LE(snapshot.served(), snapshot.requests);
      ASSERT_GE(snapshot.MeanLatencyMs(), 0.0);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(n_threads);
  for (size_t t = 0; t < n_threads; ++t) {
    writers.emplace_back([&] {
      for (size_t i = 0; i < kPerThread; ++i) {
        if (i % 7 == 0) {
          stats.Observe(request, MakeShedResult(/*deadline_ms=*/5.0, /*waited_ms=*/6.0), 0.01);
        } else if (i % 11 == 0) {
          RerankResult failed;
          failed.status = Status::IoError("injected");
          stats.Observe(request, failed, 0.02);
        } else {
          RerankResult ok;
          ok.stats.candidate_layers = 2;
          stats.Observe(request, ok, static_cast<double>(i % 100 + 1));
        }
      }
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  size_t shed_per_thread = 0;
  size_t errors_per_thread = 0;
  double latency_per_thread = 0.0;
  for (size_t i = 0; i < kPerThread; ++i) {
    if (i % 7 == 0) {
      ++shed_per_thread;
    } else if (i % 11 == 0) {
      ++errors_per_thread;
    } else {
      latency_per_thread += static_cast<double>(i % 100 + 1);
    }
  }
  const size_t served_per_thread = kPerThread - shed_per_thread - errors_per_thread;

  const ServiceStats snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.requests, n_threads * kPerThread);
  EXPECT_EQ(snapshot.shed, n_threads * shed_per_thread);
  EXPECT_EQ(snapshot.errors, n_threads * errors_per_thread);
  EXPECT_EQ(snapshot.served(), n_threads * served_per_thread);
  EXPECT_EQ(snapshot.latency_observed, n_threads * served_per_thread);
  EXPECT_DOUBLE_EQ(snapshot.total_latency_ms,
                   static_cast<double>(n_threads) * latency_per_thread);
  EXPECT_DOUBLE_EQ(snapshot.max_latency_ms, 100.0);
  EXPECT_EQ(snapshot.total_candidates,
            static_cast<int64_t>(n_threads * served_per_thread * 3));
  EXPECT_EQ(snapshot.total_candidate_layers,
            static_cast<int64_t>(n_threads * served_per_thread * 2));
  // Percentiles come from the weighted stripe fold; every sample is a real
  // served latency in [1, 100].
  EXPECT_GE(snapshot.P50LatencyMs(), 1.0);
  EXPECT_LE(snapshot.P99LatencyMs(), 100.0);
  EXPECT_FALSE(snapshot.latency_samples.empty());
}

TEST(ConcurrentServiceStatsTest, EightThreadCountersBalance) { StripedStatsStress(8); }

TEST(ConcurrentServiceStatsTest, ThirtyTwoThreadCountersBalance) { StripedStatsStress(32); }

// A runner that just sleeps: lets the shed tests hold a scheduler busy for
// a known duration without an engine.
class SleepyRunner : public BatchRunner {
 public:
  explicit SleepyRunner(double sleep_ms) : sleep_ms_(sleep_ms) {}

  RerankResult Rerank(const RerankRequest& request) override {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(sleep_ms_));
    RerankResult result;
    result.topk.resize(std::min(request.k, request.docs.size()));
    return result;
  }

  std::vector<RerankResult> RerankBatch(std::span<const RerankRequest* const> requests,
                                        ThreadPool* /*compute_pool*/) override {
    std::vector<RerankResult> results;
    results.reserve(requests.size());
    for (const RerankRequest* request : requests) {
      results.push_back(Rerank(*request));
    }
    return results;
  }

  std::string name() const override { return "sleepy"; }

 private:
  double sleep_ms_;
};

TEST(ShedQueueWaitTest, MakeShedResultCarriesQueueWait) {
  // A shed request's entire life was queue wait; the result must say so.
  const RerankResult shed = MakeShedResult(/*deadline_ms=*/5.0, /*waited_ms=*/7.5);
  EXPECT_EQ(shed.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(shed.stats.queue_wait_ms, 7.5);
  EXPECT_DOUBLE_EQ(shed.stats.latency_ms, 7.5);
}

TEST(ShedQueueWaitTest, SerialSchedulerInlineShedCarriesWait) {
  // The serial scheduler sheds inline, at mutex acquisition: a request with
  // an (effectively) 0 ms deadline that queued behind a slow one must
  // report the time it spent waiting, not 0.
  SleepyRunner runner(80.0);
  SerialScheduler scheduler(&runner);
  RerankRequest slow;
  std::thread holder([&] { scheduler.Submit(slow); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // Holder owns the mutex.
  RerankRequest tight;
  tight.deadline_ms = 0.01;
  const RerankResult shed = scheduler.Submit(tight);
  holder.join();
  ASSERT_EQ(shed.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(shed.stats.queue_wait_ms, 0.0);
  // It waited at least the remainder of the holder's 80 ms pass.
  EXPECT_GE(shed.stats.queue_wait_ms, 10.0);
}

TEST(ShedQueueWaitTest, RequestQueueShedCarriesWait) {
  // Batch/carousel shed path: an expired entry answered by the queue's
  // expiry sweep reports its full queue residence as queue wait.
  SleepyRunner runner(80.0);
  BatchScheduler scheduler(&runner, /*max_inflight=*/1, /*compute_threads=*/1);
  RerankRequest slow;
  std::thread first([&] { scheduler.Submit(slow); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // Dispatcher is busy.
  RerankRequest tight;
  tight.deadline_ms = 0.01;
  const RerankResult shed = scheduler.Submit(tight);
  first.join();
  ASSERT_EQ(shed.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(shed.stats.queue_wait_ms, 0.0);
  EXPECT_DOUBLE_EQ(shed.stats.queue_wait_ms, shed.stats.latency_ms);
}

}  // namespace
}  // namespace prism

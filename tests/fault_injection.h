// Fault-injection test doubles.
//
// FlakyRunner slots between a scheduler and the real engine (via
// ServiceOptions::runner_override or a directly-constructed BatchScheduler)
// and fails selected requests with an injected kIoError before they reach
// the wrapped runner — modelling a device read failure surfaced per-request.
// Failures follow either a deterministic sequence (request ordinal n fails
// iff fail_sequence[n]) or a seeded Bernoulli draw, so every test run is
// reproducible. The tests built on it pin down the error contract: a failing
// request must not poison its batchmates, wedge the dispatcher, or leak
// SpillPool entries.
#ifndef PRISM_TESTS_FAULT_INJECTION_H_
#define PRISM_TESTS_FAULT_INJECTION_H_

#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/runtime/runner.h"

namespace prism {

struct FaultPlan {
  // While the ordinal is inside fail_sequence, it decides; afterwards (or
  // when empty) each request fails with fail_probability via `seed`.
  std::vector<bool> fail_sequence;
  double fail_probability = 0.0;
  uint64_t seed = 0xFA17;
};

class FlakyRunner : public BatchRunner {
 public:
  FlakyRunner(BatchRunner* inner, FaultPlan plan)
      : inner_(inner), plan_(std::move(plan)), rng_(plan_.seed) {}

  RerankResult Rerank(const RerankRequest& request) override {
    const RerankRequest* ptr = &request;
    return std::move(RerankBatch({&ptr, 1}).front());
  }

  // Per-request injection: failing entries get an error result carrying the
  // request's ordinal; survivors are forwarded to the wrapped runner as one
  // (smaller) batch and their results scattered back into place.
  std::vector<RerankResult> RerankBatch(std::span<const RerankRequest* const> requests,
                                        ThreadPool* compute_pool = nullptr) override {
    std::vector<RerankResult> results(requests.size());
    std::vector<const RerankRequest*> forwarded;
    std::vector<size_t> forwarded_at;
    for (size_t i = 0; i < requests.size(); ++i) {
      if (const auto ordinal = NextFailure(); ordinal.has_value()) {
        results[i].status =
            Status::IoError("injected device read failure (request #" +
                            std::to_string(*ordinal) + ")");
        results[i].scores.assign(requests[i]->docs.size(),
                                 std::numeric_limits<float>::quiet_NaN());
      } else {
        forwarded.push_back(requests[i]);
        forwarded_at.push_back(i);
      }
    }
    if (!forwarded.empty()) {
      std::vector<RerankResult> inner_results = inner_->RerankBatch(forwarded, compute_pool);
      for (size_t j = 0; j < forwarded.size(); ++j) {
        results[forwarded_at[j]] = std::move(inner_results[j]);
      }
    }
    return results;
  }

  std::string name() const override { return "flaky(" + inner_->name() + ")"; }

  size_t injected_failures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failures_;
  }
  size_t requests_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ordinal_;
  }

 private:
  // Returns this request's ordinal if it should fail, nullopt otherwise.
  std::optional<size_t> NextFailure() {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t ordinal = ordinal_++;
    bool fail;
    if (ordinal < plan_.fail_sequence.size()) {
      fail = plan_.fail_sequence[ordinal];
    } else {
      fail = rng_.NextDouble() < plan_.fail_probability;
    }
    if (!fail) {
      return std::nullopt;
    }
    ++failures_;
    return ordinal;
  }

  BatchRunner* inner_;
  FaultPlan plan_;
  mutable std::mutex mu_;
  Rng rng_;
  size_t ordinal_ = 0;
  size_t failures_ = 0;
};

}  // namespace prism

#endif  // PRISM_TESTS_FAULT_INJECTION_H_

// Synthetic tokenizer for string-based example programs.
//
// Maps whitespace-separated words to stable token ids in
// [kFirstWordToken, vocab). The id of a word is a hash of its text remapped
// through a Zipf-rank permutation so that common *hash buckets* land on
// low-rank (frequently shared) token ids — giving string workloads the same
// skewed id distribution the embedding cache expects. Benchmarks bypass this
// class and draw token ids directly from dataset generators.
#ifndef PRISM_SRC_MODEL_TOKENIZER_H_
#define PRISM_SRC_MODEL_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/model/config.h"

namespace prism {

class SyntheticTokenizer {
 public:
  explicit SyntheticTokenizer(const ModelConfig& config) : vocab_(config.vocab_size) {}

  // Tokenises on whitespace and punctuation, lower-casing words.
  std::vector<uint32_t> Encode(std::string_view text) const;

  // Token id of a single word.
  uint32_t TokenOf(std::string_view word) const;

 private:
  size_t vocab_;
};

}  // namespace prism

#endif  // PRISM_SRC_MODEL_TOKENIZER_H_

// Synthetic reranking datasets.
//
// The paper evaluates on 18 datasets (15 BEIR tasks, LoTTE, Wikipedia,
// CodeRAG). Dataset identity matters to PRISM through four axes: input
// lengths (compute per candidate), vocabulary skew (embedding-cache hit
// rate), the gap structure of relevance grades (how early clusters separate
// → pruning aggressiveness), and label noise (how imperfect the model's
// ranking is vs. ground truth). Each profile below fixes those axes; queries
// and candidate pools are generated deterministically from (profile, seed,
// query index).
//
// A candidate's ground-truth grade g ∈ [0,1] drives both its lexical overlap
// with the query (relevant docs share query terms) and the planted relevance
// r = w_g·g + w_o·overlap + noise fed to the model's pair encoder, so the
// model's final ranking correlates with — but does not equal — the ground
// truth, exactly like a real reranker.
#ifndef PRISM_SRC_DATA_DATASET_H_
#define PRISM_SRC_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/model/config.h"

namespace prism {

struct DatasetProfile {
  std::string name;
  size_t query_terms = 8;       // Tokens per query.
  size_t doc_terms = 28;        // Mean tokens per candidate document.
  double vocab_skew = 1.05;     // Zipf exponent of the token distribution.
  double grade_gap = 0.45;      // Mean grade separation relevant vs. not.
  double grade_noise = 0.10;    // Std of noise on the planted relevance.
  double relevant_fraction = 0.3;  // Fraction of a pool that is relevant.
};

// The 18 dataset profiles, named after the paper's benchmarks.
std::vector<DatasetProfile> AllDatasetProfiles();
DatasetProfile DatasetByName(const std::string& name);

struct CandidateDoc {
  std::vector<uint32_t> tokens;
  float grade = 0.0f;      // Ground-truth relevance grade in [0, 1].
  float planted_r = 0.5f;  // Relevance scalar fed to the model.
};

struct RerankQuery {
  std::vector<uint32_t> tokens;
  std::vector<CandidateDoc> candidates;
  std::vector<size_t> relevant;  // Indices with grade >= 0.5 (ground truth).
};

class SyntheticDataset {
 public:
  SyntheticDataset(DatasetProfile profile, const ModelConfig& model, uint64_t seed);

  // Deterministic query #index with `n_candidates` candidates.
  RerankQuery MakeQuery(size_t index, size_t n_candidates) const;

  const DatasetProfile& profile() const { return profile_; }

 private:
  std::vector<uint32_t> DrawTokens(Rng& rng, size_t n) const;

  DatasetProfile profile_;
  size_t vocab_size_;
  uint64_t seed_;
  ZipfSampler zipf_;
};

}  // namespace prism

#endif  // PRISM_SRC_DATA_DATASET_H_

// prism_lint: the project-invariant linter (see ARCHITECTURE.md, "Static
// analysis & concurrency contracts").
//
// Three invariants of this codebase are structural — they hold across files
// and cannot be expressed to the compiler — so they are enforced here, as a
// test and a CI step, instead of by convention:
//
//   1. include-layering — src/ is a DAG of layers
//      (common → tensor → storage → model → data → {retrieval, runtime} →
//      {core, apps} → serving); an include that points up the DAG, or
//      sideways between sibling layers, is a violation.
//   2. wall-clock — all scheduling time flows through the Clock seam
//      (src/common/clock.h). Raw std::chrono clock reads, sleep_for /
//      sleep_until, and raw std::condition_variable are banned outside
//      clock.{h,cc}; the audited exceptions (the measurement clock, the
//      device-domain throttles) carry an explicit
//      `// prism-lint: allow(wall-clock): <reason>` directive.
//   3. atomics — in the concurrency-dense targets (src/core, src/serving,
//      src/common/striped.h) every std::atomic access spells its memory
//      order; an implicit-seq_cst `.load()` / `.store(x)` / `.fetch_add(1)`
//      is a violation. Where seq_cst is the point (the Dekker handshakes),
//      it is written out, which is exactly what the rule wants.
//   4. raw-mutex — src/ uses the annotated prism::Mutex / MutexLock wrapper
//      (src/common/mutex.h) so clang's thread-safety analysis sees every
//      lock; spelling std::mutex / std::lock_guard / std::unique_lock /
//      std::scoped_lock outside the wrapper itself is a violation.
//
// Allow directives: `// prism-lint: allow(<rule>): <reason>` suppresses the
// named rule on the directive's own line and on the first code line after
// the directive's contiguous comment block. The reason is mandatory — an
// empty reason is itself a violation.
#ifndef PRISM_TOOLS_LINT_LINT_H_
#define PRISM_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

namespace prism::lint {

struct Violation {
  std::string file;   // As given to LintFile (repo-relative by convention).
  size_t line = 0;    // 1-based.
  std::string rule;   // "layering" | "wall-clock" | "atomics" | "raw-mutex" | "directive".
  std::string message;

  std::string ToString() const;
};

// Lints one file's content. `path` is the repo-relative path (e.g.
// "src/core/engine.cc"); rule applicability (layer rank, exemptions, the
// atomics scope) is derived from it. Non-src/ paths get no layering,
// wall-clock, or raw-mutex checks but are accepted (the fixture tests pass
// synthetic src/ paths).
std::vector<Violation> LintFile(const std::string& path, const std::string& content);

// Walks `root`/src recursively, linting every .h/.cc/.cpp file. Paths in
// the returned violations are relative to `root`.
std::vector<Violation> LintTree(const std::string& root);

}  // namespace prism::lint

#endif  // PRISM_TOOLS_LINT_LINT_H_
